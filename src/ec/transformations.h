// The paper's four black-box transformations:
//   Algorithm 1  T_EC->ETOB   (proves half of Theorem 1)
//   Algorithm 2  T_ETOB->EC   (proves the other half of Theorem 1)
//   Algorithm 6  T_EC->EIC    (Appendix A, half of Theorem 3)
//   Algorithm 7  T_EIC->EC    (Appendix A, other half of Theorem 3)
//
// Each wrapper embeds the inner protocol as a value member and routes its
// wire messages through a channel tag, so stacks of transformations
// compose (e.g. EC -> ETOB -> EC for the equivalence benches).
#pragma once

#include <concepts>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/ensure.h"
#include "common/types.h"
#include "sim/app_msg_codec.h"
#include "ec/ec_types.h"
#include "sim/app_msg.h"
#include "sim/automaton.h"
#include "sim/composite.h"

namespace wfd {

/// What the ETOB->EC transformation needs from its inner broadcast
/// protocol: the current delivery sequence plus content lookup.
template <typename T>
concept BroadcastAutomatonLike = requires(const T& t, MsgId id) {
  { t.delivered() } -> std::convertible_to<const std::vector<MsgId>&>;
  { t.findMessage(id) } -> std::convertible_to<const AppMsg*>;
};

// ---------------------------------------------------------------------------
// Algorithm 1: T_EC->ETOB — eventual total order broadcast from eventual
// consensus.
//
//  * broadcastETOB(m)        -> send push(m) to all
//  * on push(m)              -> toDeliver_i := toDeliver_i ∪ {m}
//  * on response d of EC_l   -> d_i := d; count_i += 1;
//                               proposeEC_count(d_i · NewBatch(d_i, toDeliver_i))
//  * on local timeout        -> if count_i = 0 then count_i := 1;
//                               proposeEC_1(NewBatch(d_i, toDeliver_i))
// ---------------------------------------------------------------------------

/// Outer wire message of Algorithm 1.
struct EcToEtobPushMsg {
  AppMsg msg;
};

template <typename EcImpl>
class EcToEtobAutomaton final
    : public CloneableAutomaton<EcToEtobAutomaton<EcImpl>> {
 public:
  static constexpr std::uint32_t kEcChannel = 0xA1;

  explicit EcToEtobAutomaton(EcImpl inner) : ec_(std::move(inner)) {}

  void onInput(const StepContext&, const Payload& input, Effects& fx) override {
    const auto* bcast = input.as<BroadcastInput>();
    if (bcast == nullptr) return;
    fx.broadcast(Payload::of(EcToEtobPushMsg{bcast->msg}));
  }

  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override {
    if (const auto* push = msg.as<EcToEtobPushMsg>()) {
      toDeliver_.emplace(push->msg.id, push->msg);
      return;
    }
    if (const Payload* inner = unwrapChannel(msg, kEcChannel)) {
      Effects cfx;
      ec_.onMessage(ctx, from, *inner, cfx);
      drain(ctx, cfx, fx);
    }
  }

  void onTimeout(const StepContext& ctx, Effects& fx) override {
    if (count_ == 0) {
      count_ = 1;
      propose(ctx, fx, newBatch());
    }
    Effects cfx;
    ec_.onTimeout(ctx, cfx);
    drain(ctx, cfx, fx);
  }

  /// BroadcastAutomatonLike.
  const std::vector<MsgId>& delivered() const { return dIds_; }
  const AppMsg* findMessage(MsgId id) const {
    auto it = known_.find(id);
    if (it != known_.end()) return &it->second;
    auto pending = toDeliver_.find(id);
    return pending == toDeliver_.end() ? nullptr : &pending->second;
  }

  Instance currentInstance() const { return count_; }
  const EcImpl& inner() const { return ec_; }

 private:
  /// NewBatch(d_i, toDeliver_i): all received messages not yet in d_i,
  /// in deterministic (MsgId) order.
  std::vector<AppMsg> newBatch() const {
    std::set<MsgId> present(dIds_.begin(), dIds_.end());
    std::vector<AppMsg> batch;
    for (const auto& [id, m] : toDeliver_) {  // std::map: ascending ids
      if (!present.contains(id)) batch.push_back(m);
    }
    return batch;
  }

  void propose(const StepContext& ctx, Effects& fx, std::vector<AppMsg> batch) {
    std::vector<AppMsg> proposal = d_;
    proposal.insert(proposal.end(), batch.begin(), batch.end());
    Effects cfx;
    ec_.onInput(ctx, Payload::of(ProposeInput{count_, encodeAppMsgSeq(proposal)}),
                cfx);
    drain(ctx, cfx, fx);
  }

  void drain(const StepContext& ctx, Effects& cfx, Effects& fx) {
    relayChildSends(fx, kEcChannel, cfx);
    for (const Payload& out : cfx.outputs()) {
      const auto* decision = out.as<EcDecision>();
      if (decision == nullptr || decision->instance != count_) continue;
      d_ = decodeAppMsgSeq(decision->value);
      dIds_.clear();
      for (const AppMsg& m : d_) {
        dIds_.push_back(m.id);
        known_.emplace(m.id, m);
      }
      fx.deliverSequence(dIds_);
      count_ += 1;
      propose(ctx, fx, newBatch());
    }
  }

  EcImpl ec_;
  std::vector<AppMsg> d_;    // d_i with content
  std::vector<MsgId> dIds_;  // d_i as ids (trace form)
  std::map<MsgId, AppMsg> toDeliver_;
  std::map<MsgId, AppMsg> known_;  // everything ever decided (content cache)
  Instance count_ = 0;
};

// ---------------------------------------------------------------------------
// Algorithm 2: T_ETOB->EC — eventual consensus from eventual total order
// broadcast.
//
//  * proposeEC_l(v)   -> count_i := l; broadcastETOB((l, v))
//  * on local timeout -> if First(count_i) != ⊥ then
//                        DecideEC(count_i, First(count_i))
// ---------------------------------------------------------------------------

template <typename EtobImpl>
  requires BroadcastAutomatonLike<EtobImpl>
class EtobToEcAutomaton final
    : public CloneableAutomaton<EtobToEcAutomaton<EtobImpl>> {
 public:
  static constexpr std::uint32_t kEtobChannel = 0xA2;

  explicit EtobToEcAutomaton(EtobImpl inner) : etob_(std::move(inner)) {}

  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override {
    const auto* propose = input.as<ProposeInput>();
    if (propose == nullptr) return;
    count_ = propose->instance;
    AppMsg m;
    m.id = makeMsgId(ctx.self, nextSeq_++);
    m.origin = ctx.self;
    m.body.push_back(propose->instance);
    m.body.insert(m.body.end(), propose->value.begin(), propose->value.end());
    Effects cfx;
    etob_.onInput(ctx, Payload::of(BroadcastInput{std::move(m)}), cfx);
    drain(ctx, cfx, fx);
  }

  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override {
    if (const Payload* inner = unwrapChannel(msg, kEtobChannel)) {
      Effects cfx;
      etob_.onMessage(ctx, from, *inner, cfx);
      drain(ctx, cfx, fx);
    }
  }

  void onTimeout(const StepContext& ctx, Effects& fx) override {
    Effects cfx;
    etob_.onTimeout(ctx, cfx);
    drain(ctx, cfx, fx);
    maybeDecide(ctx, fx);
  }

  Instance currentInstance() const { return count_; }
  const EtobImpl& inner() const { return etob_; }

 private:
  void drain(const StepContext&, Effects& cfx, Effects& fx) {
    relayChildSends(fx, kEtobChannel, cfx);
    // The inner delivery sequence is internal to the transformation: EC's
    // observable outputs are decisions only.
  }

  /// First(l): value v of the first message of the form (l, v) in d_i.
  void maybeDecide(const StepContext&, Effects& fx) {
    if (count_ == 0 || decided_.contains(count_)) return;
    for (MsgId id : etob_.delivered()) {
      const AppMsg* m = etob_.findMessage(id);
      WFD_ENSURE_MSG(m != nullptr, "delivered message with unknown content");
      if (m->body.empty() || m->body[0] != count_) continue;
      decided_.insert(count_);
      fx.output(Payload::of(
          EcDecision{count_, Value(m->body.begin() + 1, m->body.end())}));
      return;
    }
  }

  EtobImpl etob_;
  Instance count_ = 0;
  std::uint32_t nextSeq_ = 0;
  std::set<Instance> decided_;
};

// ---------------------------------------------------------------------------
// Algorithm 6: T_EC->EIC — eventual irrevocable consensus from EC.
//
//  * proposeEIC_l(v)           -> proposeEC_l(decision_i · v)
//  * on response `decision` of -> for k in 1..l: if decision[k] differs
//    proposeEC_l                  from decision_i[k], DecideEIC(k, ...);
//                                 decision_i := decision
// ---------------------------------------------------------------------------

template <typename EcImpl>
class EcToEicAutomaton final
    : public CloneableAutomaton<EcToEicAutomaton<EcImpl>> {
 public:
  static constexpr std::uint32_t kEcChannel = 0xA6;

  explicit EcToEicAutomaton(EcImpl inner) : ec_(std::move(inner)) {}

  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override {
    const auto* propose = input.as<ProposeEicInput>();
    if (propose == nullptr) return;
    std::vector<Value> proposal = decision_;
    proposal.push_back(propose->value);
    Effects cfx;
    ec_.onInput(ctx,
                Payload::of(ProposeInput{propose->instance, encodeValueSeq(proposal)}),
                cfx);
    drain(ctx, cfx, fx);
  }

  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override {
    if (const Payload* inner = unwrapChannel(msg, kEcChannel)) {
      Effects cfx;
      ec_.onMessage(ctx, from, *inner, cfx);
      drain(ctx, cfx, fx);
    }
  }

  void onTimeout(const StepContext& ctx, Effects& fx) override {
    Effects cfx;
    ec_.onTimeout(ctx, cfx);
    drain(ctx, cfx, fx);
  }

  const std::vector<Value>& decisionSequence() const { return decision_; }
  const EcImpl& inner() const { return ec_; }

 private:
  void drain(const StepContext&, Effects& cfx, Effects& fx) {
    relayChildSends(fx, kEcChannel, cfx);
    for (const Payload& out : cfx.outputs()) {
      const auto* ecDecision = out.as<EcDecision>();
      if (ecDecision == nullptr) continue;
      std::vector<Value> decoded = decodeValueSeq(ecDecision->value);
      for (std::size_t k = 0; k < decoded.size(); ++k) {
        const bool differs = k >= decision_.size() || decision_[k] != decoded[k];
        if (differs) {
          fx.output(Payload::of(EicDecision{k + 1, decoded[k]}));
        }
      }
      decision_ = std::move(decoded);
    }
  }

  EcImpl ec_;
  std::vector<Value> decision_;  // decision_i[k] is instance k+1's response
};

// ---------------------------------------------------------------------------
// Algorithm 7: T_EIC->EC — eventual consensus from EIC.
//
//  * proposeEC_l(v)            -> count_i := l; proposeEIC_l(v)
//  * on response v of EIC_l    -> if count_i = l then DecideEC(l, v)
//    (first response only — EC-Integrity)
// ---------------------------------------------------------------------------

template <typename EicImpl>
class EicToEcAutomaton final
    : public CloneableAutomaton<EicToEcAutomaton<EicImpl>> {
 public:
  static constexpr std::uint32_t kEicChannel = 0xA7;

  explicit EicToEcAutomaton(EicImpl inner) : eic_(std::move(inner)) {}

  void onInput(const StepContext& ctx, const Payload& input, Effects& fx) override {
    const auto* propose = input.as<ProposeInput>();
    if (propose == nullptr) return;
    count_ = propose->instance;
    Effects cfx;
    eic_.onInput(ctx,
                 Payload::of(ProposeEicInput{propose->instance, propose->value}),
                 cfx);
    drain(ctx, cfx, fx);
  }

  void onMessage(const StepContext& ctx, ProcessId from, const Payload& msg,
                 Effects& fx) override {
    if (const Payload* inner = unwrapChannel(msg, kEicChannel)) {
      Effects cfx;
      eic_.onMessage(ctx, from, *inner, cfx);
      drain(ctx, cfx, fx);
    }
  }

  void onTimeout(const StepContext& ctx, Effects& fx) override {
    Effects cfx;
    eic_.onTimeout(ctx, cfx);
    drain(ctx, cfx, fx);
  }

  const EicImpl& inner() const { return eic_; }

 private:
  void drain(const StepContext&, Effects& cfx, Effects& fx) {
    relayChildSends(fx, kEicChannel, cfx);
    for (const Payload& out : cfx.outputs()) {
      const auto* eicDecision = out.as<EicDecision>();
      if (eicDecision == nullptr) continue;
      if (eicDecision->instance != count_ || decided_.contains(count_)) continue;
      decided_.insert(count_);
      fx.output(Payload::of(EcDecision{eicDecision->instance, eicDecision->value}));
    }
  }

  EicImpl eic_;
  Instance count_ = 0;
  std::set<Instance> decided_;
};

}  // namespace wfd
