#include "sim/trace.h"

#include "common/ensure.h"

namespace wfd {

Trace::Trace(std::size_t processCount, bool keepSnapshots)
    : keepSnapshots_(keepSnapshots),
      outputs_(processCount),
      snapshots_(processCount),
      current_(processCount),
      perMsg_(processCount),
      prefixViolations_(processCount, 0),
      lastViolationAt_(processCount, 0),
      lastChangeAt_(processCount, 0),
      stepsTaken_(processCount, 0),
      recordOrder_(processCount, 0) {}

void Trace::recordOutput(ProcessId p, Time t, Payload value) {
  outputs_.at(p).push_back(OutputEvent{t, recordOrder_.at(p)++, std::move(value)});
}

bool Trace::recordDelivered(ProcessId p, Time t, std::vector<MsgId> seq) {
  std::vector<MsgId>& old = current_.at(p);
  if (seq == old) return false;  // no change; keep traces compact

  // Prefix check: old must be a prefix of seq for the update to be a pure
  // extension (no revocation or reorder).
  const bool isExtension =
      seq.size() >= old.size() && std::equal(old.begin(), old.end(), seq.begin());
  if (!isExtension) {
    ++prefixViolations_.at(p);
    lastViolationAt_.at(p) = t;
  }
  lastChangeAt_.at(p) = t;

  // Per-message aggregates: detect presence/position changes.
  auto& stats = perMsg_.at(p);
  std::unordered_map<MsgId, std::size_t> newIndex;
  newIndex.reserve(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) newIndex.emplace(seq[i], i);
  // Messages that disappeared.
  for (std::size_t i = 0; i < old.size(); ++i) {
    if (!newIndex.contains(old[i])) {
      auto it = stats.find(old[i]);
      WFD_ENSURE(it != stats.end());
      it->second.presentNow = false;
      it->second.lastChange = t;
    }
  }
  std::unordered_map<MsgId, std::size_t> oldIndex;
  oldIndex.reserve(old.size());
  for (std::size_t i = 0; i < old.size(); ++i) oldIndex.emplace(old[i], i);
  // Messages that appeared or moved.
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const MsgId m = seq[i];
    auto it = stats.find(m);
    if (it == stats.end()) {
      stats.emplace(m, MsgDeliveryStats{t, t, true});
      continue;
    }
    MsgDeliveryStats& s = it->second;
    auto oldIt = oldIndex.find(m);
    const bool moved = oldIt == oldIndex.end() || oldIt->second != i;
    if (!s.presentNow || moved) {
      s.presentNow = true;
      s.lastChange = t;
    }
  }

  old = std::move(seq);
  if (keepSnapshots_) {
    snapshots_.at(p).push_back(
        DeliverySnapshot{t, recordOrder_.at(p)++, current_.at(p)});
  }
  return true;
}

std::optional<MsgDeliveryStats> Trace::deliveryStats(ProcessId p, MsgId m) const {
  const auto& stats = perMsg_.at(p);
  auto it = stats.find(m);
  if (it == stats.end()) return std::nullopt;
  return it->second;
}

}  // namespace wfd
