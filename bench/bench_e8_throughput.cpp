// E8 — Throughput and availability through leader churn (paper §1, §6, §7).
//
// Claim shape: in stable periods the Sigma gap is a latency/availability
// price, not a throughput one — both protocols deliver the whole
// workload. Through a leader-churn window (rotating Omega), ETOB keeps
// adopting the current leader's sequence while consensus-based TOB's
// pipeline stalls on re-preparation, recovering only after stabilization.
//
// Method: fixed workload; measure stable deliveries per 1000 ticks in a
// stable-leader run, and time-to-full-delivery in a churn run.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "checkers/workload.h"

namespace wfd::bench {
namespace {

struct Result {
  double deliveriesPer1k = 0;
  Time fullDeliveryAt = 0;  // maxTime if never
  std::uint64_t messages = 0;
};

SimConfig e8Config(std::size_t n, std::uint64_t seed) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 60000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  cfg.keepDeliverySnapshots = false;
  return cfg;
}

template <typename MakeCluster>
Result run(std::size_t n, std::uint64_t seed, Time tauOmega, MakeCluster make) {
  auto cfg = e8Config(n, seed);
  auto fp = FailurePattern::noFailures(n);
  auto cluster = make(cfg, fp, tauOmega);
  Simulator& sim = cluster.sim();
  BroadcastWorkload w;
  w.start = 200;
  w.interval = 30;
  w.perProcess = 25;
  cluster.scheduleWorkload(w);
  const BroadcastLog& log = cluster.log();
  Result r;
  const bool done = cluster.runUntil(
      [&](const Simulator& s) { return broadcastConverged(s, log); });
  r.fullDeliveryAt = done ? sim.now() : cfg.maxTime;
  const auto& d = sim.trace().currentDelivered(0);
  r.deliveriesPer1k = 1000.0 * static_cast<double>(d.size()) /
                      static_cast<double>(std::max<Time>(sim.now(), 1));
  r.messages = sim.trace().messagesSent();
  return r;
}

Result etobRun(std::size_t n, std::uint64_t seed, Time tauOmega) {
  return run(n, seed, tauOmega, [](SimConfig cfg, FailurePattern fp, Time tau) {
    return makeEtobCluster(cfg, std::move(fp), tau,
                           tau == 0 ? OmegaPreStabilization::kStable
                                    : OmegaPreStabilization::kSplitBrain);
  });
}

Result tobRun(std::size_t n, std::uint64_t seed, Time tauOmega) {
  return run(n, seed, tauOmega, [](SimConfig cfg, FailurePattern fp, Time tau) {
    return makeTobCluster(cfg, std::move(fp), tau,
                          tau == 0 ? OmegaPreStabilization::kStable
                                   : OmegaPreStabilization::kSplitBrain);
  });
}

void printTable() {
  std::printf("E8: throughput (stable) and time-to-full-delivery through a\n"
              "leader-churn window (split-brain Omega until t=3000)\n\n");
  Table t({"n", "protocol", "del/1k(st)", "done(stable)", "done(churn)"}, 13);
  for (std::size_t n : {3u, 5u, 7u}) {
    Result es{}, ec{}, ss{}, sc{};
    int runs = 0;
    for (std::uint64_t seed : {1u, 2u}) {
      auto a = etobRun(n, seed, 0);
      auto b = etobRun(n, seed, 3000);
      auto c = tobRun(n, seed, 0);
      auto d = tobRun(n, seed, 3000);
      es.deliveriesPer1k += a.deliveriesPer1k;
      es.fullDeliveryAt += a.fullDeliveryAt;
      ec.fullDeliveryAt += b.fullDeliveryAt;
      ss.deliveriesPer1k += c.deliveriesPer1k;
      ss.fullDeliveryAt += c.fullDeliveryAt;
      sc.fullDeliveryAt += d.fullDeliveryAt;
      ++runs;
    }
    t.row({std::to_string(n), "ETOB", fmt(es.deliveriesPer1k / runs, 1),
           std::to_string(es.fullDeliveryAt / runs),
           std::to_string(ec.fullDeliveryAt / runs)});
    t.row({std::to_string(n), "TOB", fmt(ss.deliveriesPer1k / runs, 1),
           std::to_string(ss.fullDeliveryAt / runs),
           std::to_string(sc.fullDeliveryAt / runs)});
  }
  std::printf("\n");
}

void BM_EtobThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = etobRun(n, seed++, 0);
    benchmark::DoNotOptimize(r);
    state.counters["del_per_1k"] = r.deliveriesPer1k;
  }
}
BENCHMARK(BM_EtobThroughput)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_TobThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = tobRun(n, seed++, 0);
    benchmark::DoNotOptimize(r);
    state.counters["del_per_1k"] = r.deliveriesPer1k;
  }
}
BENCHMARK(BM_TobThroughput)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
