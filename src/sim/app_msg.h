// Application-level broadcast vocabulary shared by every total-order
// broadcast implementation (strong TOB baseline, ETOB, transformations).
//
// The broadcast problem's inputs are application messages; its output at
// process p_i is the delivery-sequence variable d_i (a sequence of MsgId
// recorded in the Trace). Checkers verify the TOB / ETOB properties over
// those histories.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/payload.h"

namespace wfd {

/// An application message m. `causalDeps` is the paper's C(m): the set of
/// messages m causally depends on, supplied by the application at
/// broadcast time (protocols may extend it with everything the sender
/// already knows — see EtobConfig::autoCausal).
struct AppMsg {
  MsgId id = 0;
  ProcessId origin = kNoProcess;
  std::vector<std::uint64_t> body;
  std::vector<MsgId> causalDeps;
};

/// Input event: the application asks this process to broadcast `msg`
/// (the paper's broadcastETOB(m, C(m)) / broadcastTOB(m)).
struct BroadcastInput {
  AppMsg msg;
};

}  // namespace wfd
