// Unit and mutation tests for the consistent-hash ring — the routing
// layer of the sharded KV service. Pins the three properties the
// sharding design leans on: deterministic placement (every router
// agrees), balance (no shard hoards the key space), and minimal
// migration (node churn re-homes only the churned node's share).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/ensure.h"
#include "shard/hash_ring.h"
#include "shard/zipf.h"

namespace wfd {
namespace {

ConsistentHashRing makeRing(std::size_t nodes, std::uint64_t seed,
                            std::size_t virtualNodes = 64) {
  ConsistentHashRing ring(ConsistentHashRing::Config{virtualNodes, seed});
  for (std::size_t n = 0; n < nodes; ++n) {
    ring.addNode(static_cast<std::uint32_t>(n));
  }
  return ring;
}

constexpr std::uint64_t kKeys = 100'000;

TEST(HashRing, PlacementIsDeterministicPerSeed) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const ConsistentHashRing a = makeRing(8, seed);
    const ConsistentHashRing b = makeRing(8, seed);
    for (std::uint64_t k = 0; k < 1'000; ++k) {
      ASSERT_EQ(a.ownerOf(k), b.ownerOf(k)) << "seed " << seed << " key " << k;
    }
  }
}

TEST(HashRing, DistinctSeedsProduceDistinctPlacements) {
  const ConsistentHashRing a = makeRing(8, 1);
  const ConsistentHashRing b = makeRing(8, 2);
  std::size_t moved = 0;
  for (std::uint64_t k = 0; k < 1'000; ++k) {
    if (a.ownerOf(k) != b.ownerOf(k)) ++moved;
  }
  // Independent placements agree on ~1/8 of keys by chance.
  EXPECT_GT(moved, 700u);
}

TEST(HashRing, BalanceBoundAt64VirtualNodes) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (std::size_t nodes : {2ULL, 4ULL, 8ULL}) {
      const ConsistentHashRing ring = makeRing(nodes, seed);
      std::map<std::uint32_t, std::uint64_t> share;
      for (std::uint64_t k = 0; k < kKeys; ++k) ++share[ring.ownerOf(k)];
      const double mean = static_cast<double>(kKeys) / nodes;
      for (const auto& [node, count] : share) {
        EXPECT_LT(count / mean, 1.3)
            << "node " << node << " of " << nodes << ", seed " << seed;
      }
      EXPECT_EQ(share.size(), nodes);
    }
  }
}

TEST(HashRing, AddNodeMigratesAboutOneOverN) {
  const std::size_t n = 8;
  ConsistentHashRing ring = makeRing(n, 3);
  std::vector<std::uint32_t> before(kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) before[k] = ring.ownerOf(k);
  ring.addNode(n);
  std::uint64_t moved = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::uint32_t owner = ring.ownerOf(k);
    if (owner != before[k]) {
      ++moved;
      // Consistent hashing: a key only ever moves TO the new node.
      EXPECT_EQ(owner, n);
    }
  }
  // E[moved] = kKeys / (n + 1) ~ 11111; allow generous sampling slack.
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_GT(fraction, 0.5 / (n + 1));
  EXPECT_LT(fraction, 2.0 / (n + 1));
}

TEST(HashRing, RemoveNodeRehomesExactlyItsKeys) {
  ConsistentHashRing ring = makeRing(8, 4);
  std::vector<std::uint32_t> before(kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) before[k] = ring.ownerOf(k);
  ASSERT_TRUE(ring.removeNode(3));
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (before[k] == 3) {
      EXPECT_NE(ring.ownerOf(k), 3u);
    } else {
      // The crash-rebalance guarantee: live shards keep every key.
      ASSERT_EQ(ring.ownerOf(k), before[k]) << "key " << k;
    }
  }
  EXPECT_FALSE(ring.contains(3));
  EXPECT_EQ(ring.nodeCount(), 7u);
  EXPECT_EQ(ring.pointCount(), 7u * 64u);
}

TEST(HashRing, OwnersOfReturnsDistinctNodesOwnerFirst) {
  const ConsistentHashRing ring = makeRing(5, 9);
  for (std::uint64_t k = 0; k < 200; ++k) {
    const std::vector<std::uint32_t> owners = ring.ownersOf(k, 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(owners[0], ring.ownerOf(k));
    EXPECT_NE(owners[0], owners[1]);
    EXPECT_NE(owners[0], owners[2]);
    EXPECT_NE(owners[1], owners[2]);
  }
  // Asking for more replicas than nodes returns every node once.
  EXPECT_EQ(ring.ownersOf(1, 99).size(), 5u);
}

TEST(HashRing, MisuseIsRejected) {
  ConsistentHashRing ring = makeRing(2, 1);
  EXPECT_THROW(ring.addNode(0), InvariantError);       // re-add
  EXPECT_FALSE(ring.removeNode(17));                   // absent
  ASSERT_TRUE(ring.removeNode(0));
  EXPECT_THROW(ring.removeNode(1), InvariantError);    // last node
  EXPECT_THROW(ConsistentHashRing(ConsistentHashRing::Config{0, 1}),
               InvariantError);                        // zero vnodes
}

// --- Key generators (the workload side of the routing layer) ---------------

TEST(KeyGenerators, UniformIsDeterministicAndCoversTheSpace) {
  UniformKeyGenerator a(64, 5);
  UniformKeyGenerator b(64, 5);
  std::map<std::uint64_t, std::uint64_t> hist;
  for (int i = 0; i < 6400; ++i) {
    const std::uint64_t k = a.next();
    ASSERT_EQ(k, b.next());
    ASSERT_LT(k, 64u);
    ++hist[k];
  }
  EXPECT_EQ(hist.size(), 64u);
}

TEST(KeyGenerators, ZipfianIsSkewedTowardRankZero) {
  ZipfianKeyGenerator gen(64, 0.99, 5);
  std::map<std::uint64_t, std::uint64_t> hist;
  for (int i = 0; i < 20'000; ++i) ++hist[gen.next()];
  // Under Zipf(0.99) over 64 items, rank 0 carries ~21% of the mass —
  // far above the uniform 1/64, and above every other rank.
  EXPECT_GT(hist[0], 20'000 / 8);
  for (const auto& [key, count] : hist) {
    if (key != 0) {
      EXPECT_GE(hist[0], count);
    }
  }
}

}  // namespace
}  // namespace wfd
