// Unit + integration tests: the multi-Paxos engine (the strongly
// consistent baseline's consensus core) — safety under adversarial
// message orders, liveness under a stable leader with a majority, and
// the stall without a majority.
#include <gtest/gtest.h>

#include <optional>

#include "common/ensure.h"
#include "consensus/multi_paxos.h"
#include "sim/message.h"

namespace wfd {
namespace {

using Outbox = MultiPaxosEngine::Outbox;

/// Delivers every send in `out` from `senderOf(index)` into all engines
/// (kBroadcast) or the addressed one, collecting produced sends
/// recursively until quiescence.
class PaxosHarness {
 public:
  explicit PaxosHarness(std::size_t n) {
    for (ProcessId p = 0; p < n; ++p) engines_.emplace_back(p, n);
  }

  MultiPaxosEngine& engine(ProcessId p) { return engines_[p]; }
  std::size_t size() const { return engines_.size(); }

  /// Routes an outbox produced by `from`, optionally dropping messages to
  /// a set of crashed processes.
  void route(ProcessId from, Outbox& out, const std::vector<bool>& crashed) {
    std::vector<std::tuple<ProcessId, ProcessId, Payload>> queue;
    for (auto& [to, payload] : out.sends) {
      if (to == kBroadcast) {
        for (ProcessId dest = 0; dest < engines_.size(); ++dest) {
          queue.emplace_back(from, dest, payload);
        }
      } else {
        queue.emplace_back(from, to, payload);
      }
    }
    out.sends.clear();
    while (!queue.empty()) {
      auto [src, dest, payload] = queue.front();
      queue.erase(queue.begin());
      if (crashed[dest]) continue;
      Outbox reply;
      engines_[dest].onMessage(src, payload, reply);
      for (auto& [to2, payload2] : reply.sends) {
        if (to2 == kBroadcast) {
          for (ProcessId d2 = 0; d2 < engines_.size(); ++d2) {
            queue.emplace_back(dest, d2, payload2);
          }
        } else {
          queue.emplace_back(dest, to2, payload2);
        }
      }
    }
  }

 private:
  std::vector<MultiPaxosEngine> engines_;
};

Value val(std::uint64_t x) { return Value{x}; }

TEST(MultiPaxosTest, ProposeRequiresPrepared) {
  MultiPaxosEngine e(0, 3);
  Outbox out;
  EXPECT_THROW(e.propose(1, val(7), out), InvariantError);
}

TEST(MultiPaxosTest, LeaderPreparesAndDecidesWithAllAlive) {
  PaxosHarness h(3);
  std::vector<bool> crashed(3, false);
  Outbox out;
  h.engine(0).tick(true, out);
  h.route(0, out, crashed);
  ASSERT_TRUE(h.engine(0).canPropose());
  h.engine(0).propose(1, val(42), out);
  h.route(0, out, crashed);
  for (ProcessId p = 0; p < 3; ++p) {
    ASSERT_TRUE(h.engine(p).decided(1)) << "p" << p;
    EXPECT_EQ(*h.engine(p).decision(1), val(42));
  }
}

TEST(MultiPaxosTest, DecidesWithBareMajority) {
  PaxosHarness h(5);
  std::vector<bool> crashed{false, false, false, true, true};
  Outbox out;
  h.engine(0).tick(true, out);
  h.route(0, out, crashed);
  ASSERT_TRUE(h.engine(0).canPropose());
  h.engine(0).propose(1, val(9), out);
  h.route(0, out, crashed);
  EXPECT_TRUE(h.engine(0).decided(1));
  EXPECT_TRUE(h.engine(2).decided(1));
}

TEST(MultiPaxosTest, StallsWithoutMajority) {
  PaxosHarness h(5);
  std::vector<bool> crashed{false, false, true, true, true};
  Outbox out;
  for (int i = 0; i < 10; ++i) {
    h.engine(0).tick(true, out);
    h.route(0, out, crashed);
  }
  EXPECT_FALSE(h.engine(0).canPropose())
      << "2 of 5 promises can never reach a majority";
}

TEST(MultiPaxosTest, NewLeaderAdoptsConstrainedValue) {
  // p0 gets a value accepted at a majority, then "crashes"; p1 prepares a
  // higher ballot and MUST re-propose p0's value for that instance.
  PaxosHarness h(3);
  std::vector<bool> allAlive(3, false);
  Outbox out;
  h.engine(0).tick(true, out);
  h.route(0, out, allAlive);
  h.engine(0).propose(1, val(100), out);
  h.route(0, out, allAlive);
  ASSERT_TRUE(h.engine(2).decided(1));

  // p1 now leads; suppose it never learned the decision directly — wipe
  // nothing, just prepare a new ballot and propose its own value.
  h.engine(0).tick(false, out);  // p0 abdicates
  h.engine(1).tick(true, out);
  h.route(1, out, allAlive);
  ASSERT_TRUE(h.engine(1).canPropose());
  h.engine(1).propose(1, val(200), out);
  h.route(1, out, allAlive);
  // Safety: instance 1 keeps value 100 everywhere.
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(*h.engine(p).decision(1), val(100)) << "p" << p;
  }
}

TEST(MultiPaxosTest, CompetingProposersStaySafe) {
  // Two processes both believe they lead (split brain). Whatever gets
  // decided must be decided identically everywhere.
  PaxosHarness h(3);
  std::vector<bool> allAlive(3, false);
  Outbox out;
  h.engine(0).tick(true, out);
  h.route(0, out, allAlive);
  h.engine(1).tick(true, out);
  h.route(1, out, allAlive);
  if (h.engine(0).canPropose()) {
    h.engine(0).propose(1, val(1), out);
    h.route(0, out, allAlive);
  }
  if (h.engine(1).canPropose()) {
    h.engine(1).propose(1, val(2), out);
    h.route(1, out, allAlive);
  }
  std::optional<Value> chosen;
  for (ProcessId p = 0; p < 3; ++p) {
    if (h.engine(p).decided(1)) {
      if (!chosen.has_value()) {
        chosen = *h.engine(p).decision(1);
      } else {
        EXPECT_EQ(*h.engine(p).decision(1), *chosen);
      }
    }
  }
}

TEST(MultiPaxosTest, LosingLeadershipResetsProposerState) {
  PaxosHarness h(3);
  std::vector<bool> allAlive(3, false);
  Outbox out;
  h.engine(0).tick(true, out);
  h.route(0, out, allAlive);
  ASSERT_TRUE(h.engine(0).canPropose());
  h.engine(0).tick(false, out);
  EXPECT_FALSE(h.engine(0).canPropose());
  // Regaining leadership uses a fresh, higher ballot.
  h.engine(0).tick(true, out);
  h.route(0, out, allAlive);
  EXPECT_TRUE(h.engine(0).canPropose());
}

TEST(MultiPaxosTest, ContiguousDecidedTracksGaps) {
  PaxosHarness h(3);
  std::vector<bool> allAlive(3, false);
  Outbox out;
  h.engine(0).tick(true, out);
  h.route(0, out, allAlive);
  h.engine(0).propose(2, val(5), out);  // decide instance 2 first
  h.route(0, out, allAlive);
  EXPECT_EQ(h.engine(0).contiguousDecided(), 0u);
  h.engine(0).propose(1, val(4), out);
  h.route(0, out, allAlive);
  EXPECT_EQ(h.engine(0).contiguousDecided(), 2u);
}

TEST(MultiPaxosTest, DuplicateProposalIgnored) {
  PaxosHarness h(3);
  std::vector<bool> allAlive(3, false);
  Outbox out;
  h.engine(0).tick(true, out);
  h.route(0, out, allAlive);
  h.engine(0).propose(1, val(7), out);
  h.route(0, out, allAlive);
  Outbox second;
  h.engine(0).propose(1, val(8), second);
  EXPECT_TRUE(second.sends.empty()) << "instance already decided/proposed";
}

TEST(MultiPaxosTest, NonPaxosPayloadRejected) {
  MultiPaxosEngine e(0, 3);
  Outbox out;
  EXPECT_FALSE(e.onMessage(1, Payload::of(42), out));
}

}  // namespace
}  // namespace wfd
