// Support for composing automata: the paper's transformations (Algorithms
// 1, 2, 6, 7) run a sub-protocol as a black box inside another protocol.
//
// The parent runs the child into a private Effects object, then relays the
// child's sends wrapped in a channel tag so incoming messages can be
// routed back to the child. Outputs of the child are interpreted by the
// parent (e.g. an inner EC decision drives the outer ETOB delivery).
#pragma once

#include <cstdint>
#include <utility>

#include "sim/automaton.h"

namespace wfd {

/// A message belonging to an embedded sub-protocol.
struct Tagged {
  std::uint32_t channel = 0;
  Payload inner;
};

/// Relays the child's sends into the parent's effects, wrapped with the
/// channel tag. Outputs and delivery sequences are NOT relayed — the
/// parent decides what they mean.
inline void relayChildSends(Effects& parent, std::uint32_t channel,
                            const Effects& child) {
  for (const OutboundMsg& m : child.sends()) {
    Payload wrapped = Payload::of(Tagged{channel, m.payload});
    if (m.to == kBroadcast) {
      parent.broadcast(std::move(wrapped), m.weight);
    } else {
      parent.send(m.to, std::move(wrapped), m.weight);
    }
  }
}

/// If `msg` is a Tagged payload for `channel`, returns the inner payload;
/// otherwise nullptr.
inline const Payload* unwrapChannel(const Payload& msg, std::uint32_t channel) {
  const auto* tagged = msg.as<Tagged>();
  if (tagged == nullptr || tagged->channel != channel) return nullptr;
  return &tagged->inner;
}

}  // namespace wfd
