// E1 — Communication-step latency (paper §1 property (1), §5, §7,
// footnote 1, and the lower bound of [22]).
//
// Claim: ET OB stably delivers a broadcast in TWO communication steps
// under a stable leader; strong TOB (consensus-based) needs THREE.
//
// Method: fixed link delay Δ_c (so latency/Δ_c counts message hops),
// λ-period Δ_t << Δ_c, one broadcast from a non-leader after the system
// is warm; hop count = round(stable-delivery latency / Δ_c), median over
// receivers and seeds.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "checkers/workload.h"
#include "sim/app_msg.h"

namespace wfd::bench {
namespace {

constexpr Time kDelta = 1000;   // Δ_c: fixed link delay
constexpr Time kTimeout = 20;   // Δ_t: λ-period (small vs Δ_c)

SimConfig latencyConfig(std::size_t n, std::uint64_t seed) {
  SimConfig cfg;
  cfg.processCount = n;
  cfg.seed = seed;
  cfg.maxTime = 40000;
  cfg.timeoutPeriod = kTimeout;
  cfg.minDelay = kDelta;
  cfg.maxDelay = kDelta;
  cfg.fixedDelay = true;
  return cfg;
}

/// Runs one broadcast through a prepared cluster and returns the median
/// hop count over all processes.
template <typename MakeCluster>
double medianHops(std::size_t n, std::uint64_t seed, MakeCluster make) {
  auto cfg = latencyConfig(n, seed);
  auto fp = FailurePattern::noFailures(n);
  auto cluster = make(cfg, fp);
  Simulator& sim = cluster.sim();
  // Broadcast from the highest-id process (never the leader, p0) after
  // warmup (TOB needs its prepare phase done; ETOB needs nothing).
  const Time at = 3 * kDelta + 7;
  const MsgId id = cluster.client(n - 1).submitAt(at, {1});
  cluster.runUntil([&](const Simulator& s) {
    for (ProcessId p = 0; p < n; ++p) {
      const auto& d = s.trace().currentDelivered(p);
      if (std::find(d.begin(), d.end(), id) == d.end()) return false;
    }
    return s.now() > at + 5 * kDelta;  // settle, catch revocations
  });
  std::vector<double> hops;
  for (ProcessId p = 0; p < n; ++p) {
    auto stats = sim.trace().deliveryStats(p, id);
    if (!stats.has_value() || !stats->presentNow) continue;
    hops.push_back(
        static_cast<double>(stats->lastChange - at + kDelta / 2) / kDelta);
  }
  if (hops.empty()) return 0;
  std::sort(hops.begin(), hops.end());
  return static_cast<double>(static_cast<int>(hops[hops.size() / 2]));
}

double etobHops(std::size_t n, std::uint64_t seed) {
  return medianHops(n, seed, [](SimConfig cfg, FailurePattern fp) {
    return makeEtobCluster(cfg, std::move(fp), 0, OmegaPreStabilization::kStable);
  });
}

double tobHops(std::size_t n, std::uint64_t seed) {
  return medianHops(n, seed, [](SimConfig cfg, FailurePattern fp) {
    return makeTobCluster(cfg, std::move(fp), 0, OmegaPreStabilization::kStable);
  });
}

void printTable() {
  std::printf("E1: delivery latency in communication steps "
              "(stable leader; expect ETOB=2, TOB=3)\n\n");
  Table t({"n", "etob_steps", "tob_steps", "ratio"});
  for (std::size_t n : {3u, 5u, 7u}) {
    double e = 0, s = 0;
    int runs = 0;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      e += etobHops(n, seed);
      s += tobHops(n, seed);
      ++runs;
    }
    e /= runs;
    s /= runs;
    t.row({std::to_string(n), fmt(e, 1), fmt(s, 1), fmt(s / e)});
  }
  std::printf("\n");
}

void BM_EtobDeliveryLatency(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  double hops = 0;
  for (auto _ : state) {
    hops = etobHops(n, seed++);
    benchmark::DoNotOptimize(hops);
  }
  state.counters["steps"] = hops;
}
BENCHMARK(BM_EtobDeliveryLatency)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_TobDeliveryLatency(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  double hops = 0;
  for (auto _ : state) {
    hops = tobHops(n, seed++);
    benchmark::DoNotOptimize(hops);
  }
  state.counters["steps"] = hops;
}
BENCHMARK(BM_TobDeliveryLatency)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
