#include "explore/fuzz_plan.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "common/ensure.h"
#include "common/hash.h"
#include "explore/plan_codec.h"
#include "explore/random_schedule_model.h"

namespace wfd {

const char* omegaModeName(OmegaPreStabilization mode) {
  switch (mode) {
    case OmegaPreStabilization::kStable:
      return "stable";
    case OmegaPreStabilization::kRotating:
      return "rotating";
    case OmegaPreStabilization::kSplitBrain:
      return "split-brain";
  }
  return "?";
}

bool parseOmegaMode(const std::string& name, OmegaPreStabilization* out) {
  for (OmegaPreStabilization mode :
       {OmegaPreStabilization::kStable, OmegaPreStabilization::kRotating,
        OmegaPreStabilization::kSplitBrain}) {
    if (name == omegaModeName(mode)) {
      *out = mode;
      return true;
    }
  }
  return false;
}

namespace {

std::size_t stackIndex(AlgoStack stack) {
  return static_cast<std::size_t>(stack);
}

}  // namespace

std::uint64_t derivePlanSeed(std::uint64_t masterSeed, AlgoStack stack,
                             std::uint64_t runIndex) {
  std::uint64_t s = splitmix64(masterSeed);
  s = splitmix64(s ^ (static_cast<std::uint64_t>(stackIndex(stack)) + 1));
  s = splitmix64(s ^ (runIndex + 1));
  return s;
}

FuzzPlan sampleFuzzPlan(AlgoStack stack, std::uint64_t masterSeed,
                        std::uint64_t runIndex, std::size_t bigClusterMaxN,
                        bool lossGenome) {
  Rng rng(derivePlanSeed(masterSeed, stack, runIndex));
  FuzzPlan plan;
  plan.stack = stack;
  // The big-cluster branch draws ONLY when opted in, so bigClusterMaxN
  // == 0 reproduces the legacy plan stream byte-for-byte (pinned by
  // test_explore / test_campaign determinism suites and the CI diff).
  bool big = false;
  if (bigClusterMaxN > 6) {
    big = rng.chance(1, 4);
    if (big) {
      // omega-ec stays cheap at any n; the broadcast/gossip stacks pay
      // protocol-inherent O(n^2)-per-round costs, so their fuzz
      // envelope caps at the n=64 smoke scale.
      const std::size_t cap = std::min<std::size_t>(
          bigClusterMaxN, stack == AlgoStack::kOmegaEc ? 256 : 64);
      plan.processCount = rng.between(16, std::max<std::size_t>(cap, 16));
    }
  }
  if (!big) plan.processCount = rng.between(3, 6);
  plan.simSeed = rng.engine()();
  const std::size_t n = plan.processCount;

  plan.timeoutPeriod = rng.between(5, 15);
  plan.minDelay = rng.between(5, 40);
  plan.maxDelay = plan.minDelay + rng.between(0, 40);
  if (stack == AlgoStack::kOmegaEc) plan.ecInstances = rng.between(20, 60);

  // Detector shape. Under kStable, tau_Omega is 0 by definition.
  switch (rng.below(3)) {
    case 0:
      plan.omegaMode = OmegaPreStabilization::kStable;
      plan.tauOmega = 0;
      break;
    case 1:
      plan.omegaMode = OmegaPreStabilization::kRotating;
      break;
    default:
      plan.omegaMode = OmegaPreStabilization::kSplitBrain;
      break;
  }
  if (plan.omegaMode != OmegaPreStabilization::kStable) {
    if (stack == AlgoStack::kOmegaEc) {
      // Fairness of the finite-run eventual-agreement check: the driver
      // must still be deciding instances well after Omega stabilizes, or
      // the last instance legitimately disagrees and no k-hat can land
      // inside the range. A decision costs at least one promote flight
      // (>= minDelay) or one (possibly 4x-skewed-fast) lambda period per
      // instance, so cap tau_Omega at half the fastest possible stream.
      const Time perInstanceFloor =
          std::max<Time>(plan.timeoutPeriod / 4, plan.minDelay);
      const Time cap =
          std::max<Time>(perInstanceFloor + 1,
                         plan.ecInstances * perInstanceFloor / 2);
      plan.tauOmega = rng.between(perInstanceFloor, cap);
    } else {
      plan.tauOmega = rng.between(200, 4000);
    }
  }

  // Crashes: keep at least one correct process; the consensus-based TOB
  // baseline additionally needs a correct majority to stay live.
  const std::size_t maxCrashes =
      stack == AlgoStack::kTobViaConsensus ? (n - 1) / 2 : n - 1;
  const std::size_t crashCount = rng.below(maxCrashes + 1);
  {
    std::vector<ProcessId> victims(n);
    for (ProcessId p = 0; p < n; ++p) victims[p] = p;
    // Deterministic partial Fisher-Yates over the victim set.
    for (std::size_t i = 0; i < crashCount; ++i) {
      const std::size_t j = i + rng.below(victims.size() - i);
      std::swap(victims[i], victims[j]);
      plan.crashes.push_back(
          PlanCrash{victims[i], rng.below(2) == 0 ? rng.between(0, 500)
                                                  : rng.between(500, 4000)});
    }
    std::sort(plan.crashes.begin(), plan.crashes.end(),
              [](const PlanCrash& a, const PlanCrash& b) {
                return a.process < b.process;
              });
  }

  // Partitions: at most one recurring family (so joint windows can never
  // cover all time on a link) plus at most one one-shot blackout.
  if (rng.chance(1, 2)) {
    PlanPartition part;
    part.start = rng.between(200, 3000);
    part.width = rng.between(100, 600);
    if (rng.chance(1, 2)) part.period = part.width + rng.between(300, 2000);
    part.isolate = rng.chance(1, 4) ? kNoProcess : rng.below(n);
    plan.partitions.push_back(part);
    if (rng.chance(1, 3)) {
      PlanPartition oneShot;
      oneShot.start = rng.between(200, 3000);
      oneShot.width = rng.between(100, 800);
      oneShot.period = 0;
      oneShot.isolate = rng.chance(1, 3) ? kNoProcess : rng.below(n);
      plan.partitions.push_back(oneShot);
    }
  }

  if (rng.chance(1, 2)) {
    plan.chaos.dupNum = 1;
    plan.chaos.dupDen = static_cast<std::uint32_t>(rng.between(2, 4));
    plan.chaos.maxExtraCopies = static_cast<std::uint32_t>(rng.between(1, 3));
    plan.chaos.reorderJitter = rng.between(10, 80);
    plan.chaos.onlyTouching = rng.chance(1, 3) ? rng.below(n) : kNoProcess;
  }

  if (rng.chance(1, 3)) {
    static constexpr PlanSkew kSkewMenu[] = {{1, 1}, {2, 1}, {3, 1},
                                             {1, 2}, {2, 3}, {3, 2}};
    plan.skews.reserve(n);
    for (std::size_t p = 0; p < n; ++p) {
      plan.skews.push_back(kSkewMenu[rng.below(std::size(kSkewMenu))]);
    }
  }

  if (rng.chance(1, 4)) {
    plan.slowLink.process = rng.below(n);
    plan.slowLink.factor = rng.between(2, 4);
  }

  plan.workload.start = rng.between(50, 300);
  plan.workload.interval = rng.between(20, 80);
  plan.workload.perProcess = rng.between(2, 6);
  if (stack == AlgoStack::kEtob || stack == AlgoStack::kCommitEtob ||
      stack == AlgoStack::kTobViaConsensus) {
    plan.workload.causalChain = rng.chance(1, 3);
    plan.workload.crossDeps = rng.chance(1, 4);
  }
  if (big) {
    // Few writers, many replicas: the interesting big-n behavior is in
    // dissemination and quorum shape, not in the input volume — and an
    // all-write workload at n=64 would make every sampled plan cost
    // seconds instead of tens of milliseconds.
    plan.workload.writers = rng.between(2, 8);
    plan.workload.perProcess = rng.between(1, 3);
  }
  // Loss genome LAST and only when opted in: with lossGenome == false
  // this branch draws NOTHING, so the legacy plan stream is reproduced
  // byte-for-byte (pinned by test_explore and the CI byte-identity
  // diff), and with it on, the loss-free prefix of each plan is the
  // same plan the legacy sampler would have produced.
  if (lossGenome && rng.chance(1, 3)) {
    plan.loss.lossNum = 1;
    plan.loss.lossDen = static_cast<std::uint32_t>(rng.between(5, 16));
    if (rng.chance(1, 2)) {
      plan.loss.burstPeriod = rng.between(900, 3000);
      plan.loss.burstLen = rng.between(100, plan.loss.burstPeriod / 3);
    }
    if (rng.chance(1, 4)) {
      // One-shot outbound cut only: the catalog's lossy-oneway entries
      // cover recurring cuts deterministically; the fuzz envelope keeps
      // the cut bounded so the retransmission tail is trivially fair.
      plan.loss.oneWayFrom = rng.below(n);
      plan.loss.oneWayStart = rng.between(200, 3000);
      plan.loss.oneWayWidth = rng.between(100, 600);
    }
    plan.loss.activeUntil = rng.between(4000, 12000);
  }
  plan.maxTime = planHorizon(plan);
  WFD_ENSURE_MSG(planAdmissibilityViolations(plan).empty(),
                 "sampler produced an inadmissible plan");
  return plan;
}

Time planHorizon(const FuzzPlan& plan) {
  // Effective worst-case step period and link delay after skew/slow-link
  // scaling (integer ceilings, erring long).
  Time skewMax = 1;
  for (const PlanSkew& s : plan.skews) {
    skewMax = std::max(skewMax, (s.num + s.den - 1) / s.den);
  }
  const Time linkFactor =
      plan.slowLink.process != kNoProcess ? plan.slowLink.factor : 1;
  const Time effDelay = plan.maxDelay * linkFactor + plan.chaos.reorderJitter;
  const Time effTimeout = plan.timeoutPeriod * skewMax;

  // Last scheduled disturbance: workload inputs (origin stagger bounded by
  // (maxDelay + timeoutPeriod) * n, the cross-deps stagger), crashes,
  // detector stabilization and partition windows.
  Time busy = plan.workload.start +
              plan.workload.interval * plan.workload.perProcess +
              (plan.maxDelay + plan.timeoutPeriod) * plan.processCount;
  for (const PlanCrash& c : plan.crashes) busy = std::max(busy, c.time);
  busy = std::max(busy, plan.tauOmega);
  Time recurringPeriod = 0;
  Time recurringWidth = 0;
  for (const PlanPartition& p : plan.partitions) {
    if (p.period == 0) {
      busy = std::max(busy, p.start + p.width);
    } else {
      busy = std::max(busy, p.start + 3 * p.period);
      recurringPeriod = std::max(recurringPeriod, p.period);
      recurringWidth = std::max(recurringWidth, p.width);
    }
  }
  if (plan.loss.enabled()) {
    busy = std::max(busy, plan.loss.activeUntil);
    if (plan.loss.oneWayFrom != kNoProcess) {
      if (plan.loss.oneWayPeriod == 0) {
        busy = std::max(busy, plan.loss.oneWayStart + plan.loss.oneWayWidth);
      } else {
        busy = std::max(busy, plan.loss.oneWayStart + 3 * plan.loss.oneWayPeriod);
        recurringPeriod = std::max(recurringPeriod, plan.loss.oneWayPeriod);
        recurringWidth = std::max(recurringWidth, plan.loss.oneWayWidth);
      }
    }
  }

  // Settle margin: enough quiet λ-rounds and message round-trips for the
  // liveness clauses (convergence, commit catch-up, gossip anti-entropy)
  // to be fair assertions, stretched past a few recurring heal gaps.
  Time settle = 4000 + 30 * effDelay + 40 * effTimeout + 3 * recurringPeriod;
  if (plan.loss.enabled()) {
    // Stubborn-retransmission tail: a copy dropped right at the loss
    // boundary still has to climb the capped backoff ladder before its
    // retransmit lands on the healed network.
    settle += 16 * (2 * effDelay + effTimeout + 1);
  }

  // The EC driver decides instances sequentially: budget a few delays and
  // λ-steps per instance, inflated by the recurring-partition duty cycle
  // (promotes defer to window ends while the leader is isolated).
  if (plan.ecInstances > 0) {
    Time perInstance = 2 * effDelay + 4 * effTimeout;
    if (recurringPeriod > 0) {
      perInstance = perInstance * recurringPeriod /
                    std::max<Time>(recurringPeriod - recurringWidth, 1);
    }
    settle += plan.ecInstances * perInstance;
  }
  return busy + settle;
}

std::vector<std::string> planAdmissibilityViolations(const FuzzPlan& plan) {
  std::vector<std::string> out;
  const std::size_t n = plan.processCount;
  auto bad = [&out](std::string why) { out.push_back(std::move(why)); };

  // Every time-like field is bounded: the bounds are far above anything
  // the sampler emits, but they (a) make the u64 arithmetic in
  // planHorizon overflow-free by construction, and (b) keep even the
  // most extreme admissible plan's event volume within a scaled
  // simulator budget (planScenario raises SimConfig.maxEvents with the
  // horizon) — so a hand-written plan can never pass validation yet be
  // silently truncated into a spurious liveness violation.
  constexpr Time kMaxEventTime = 1'000'000;

  // The big-cluster genome widened the envelope from the original
  // [2, 12]: omega-ec runs are near-linear in n, the broadcast/gossip
  // stacks pay O(n^2) per round and cap at the n=64 smoke scale.
  const std::size_t maxN = plan.stack == AlgoStack::kOmegaEc ? 256 : 64;
  if (n < 2 || n > maxN) {
    bad("processCount must be in [2, " + std::to_string(maxN) +
        "] for this stack");
  }
  if (plan.timeoutPeriod < 1 || plan.timeoutPeriod > 1000) {
    bad("timeoutPeriod must be in [1, 1000]");
  }
  if (plan.minDelay < 1 || plan.minDelay > plan.maxDelay ||
      plan.maxDelay > 2000) {
    bad("delays must satisfy 1 <= minDelay <= maxDelay <= 2000");
  }
  if (plan.omegaMode == OmegaPreStabilization::kStable && plan.tauOmega != 0) {
    bad("stable omega means tauOmega == 0");
  }
  if (plan.tauOmega > kMaxEventTime) bad("tauOmega must be <= 1e6");

  std::set<ProcessId> crashed;
  for (const PlanCrash& c : plan.crashes) {
    if (c.process >= n) bad("crash names a process outside the system");
    if (!crashed.insert(c.process).second) bad("process crashed twice");
    if (c.time > kMaxEventTime) bad("crash time must be <= 1e6");
  }
  if (crashed.size() >= n) bad("at least one process must stay correct");
  if (plan.stack == AlgoStack::kTobViaConsensus &&
      (n - crashed.size()) * 2 <= n) {
    bad("tob-via-consensus requires a correct majority");
  }

  std::size_t recurring = 0;
  for (const PlanPartition& p : plan.partitions) {
    if (p.width < 1) bad("partition width must be >= 1");
    if (p.period != 0 && p.period <= p.width) {
      bad("recurring partition must heal: period > width");
    }
    if (p.period != 0) ++recurring;
    if (p.isolate != kNoProcess && p.isolate >= n) {
      bad("partition isolates a process outside the system");
    }
    if (p.start > kMaxEventTime || p.width > kMaxEventTime ||
        p.period > kMaxEventTime) {
      bad("partition times must be <= 1e6");
    }
  }
  if (recurring > 1) {
    bad("at most one recurring partition family (joint windows must not "
        "cover all time)");
  }

  if (plan.chaos.dupNum > 0) {
    if (plan.chaos.dupDen < 1 || plan.chaos.dupNum > plan.chaos.dupDen) {
      bad("chaos duplication probability must be <= 1");
    }
    if (plan.chaos.maxExtraCopies < 1 || plan.chaos.maxExtraCopies > 8) {
      bad("chaos maxExtraCopies must be in [1, 8]");
    }
    if (plan.chaos.reorderJitter > 1000) bad("chaos jitter must be <= 1000");
    if (plan.chaos.onlyTouching != kNoProcess && plan.chaos.onlyTouching >= n) {
      bad("chaos link filter names a process outside the system");
    }
  }

  if (!plan.skews.empty() && plan.skews.size() != n) {
    bad("skew list must be empty or name every process");
  }
  for (const PlanSkew& s : plan.skews) {
    if (s.num < 1 || s.den < 1 || s.num > 8 || s.den > 8 ||
        s.num > 4 * s.den || s.den > 4 * s.num) {
      bad("skew ratios must be within [1/4, 4] with terms in [1, 8]");
    }
  }

  if (plan.slowLink.process != kNoProcess) {
    if (plan.slowLink.process >= n) {
      bad("slow link names a process outside the system");
    }
    if (plan.slowLink.factor < 1 || plan.slowLink.factor > 8) {
      bad("slow link factor must be in [1, 8]");
    }
  }

  // Fair-lossy layers: fairness means retransmission always wins in the
  // end — rates stay below the IidLossModel starvation guard, bursts
  // leave most of each frame clear, the i.i.d./burst layers go quiet,
  // and one-way cuts heal.
  if (plan.loss.lossNum > 0) {
    if (plan.loss.lossDen < 1 || plan.loss.lossNum * 4 > plan.loss.lossDen) {
      bad("iid loss rate must be <= 1/4 (fair-lossy starvation guard)");
    }
  }
  if (plan.loss.burstPeriod > 0) {
    if (plan.loss.burstPeriod > kMaxEventTime) {
      bad("loss burst period must be <= 1e6");
    }
    if (plan.loss.burstLen < 1 || 3 * plan.loss.burstLen > plan.loss.burstPeriod) {
      bad("loss bursts must cover at most a third of each frame");
    }
  } else if (plan.loss.burstLen != 0) {
    bad("loss burstLen needs burstPeriod > 0");
  }
  if (plan.loss.lossNum > 0 || plan.loss.burstPeriod > 0) {
    if (plan.loss.activeUntil < 1 || plan.loss.activeUntil > kMaxEventTime) {
      bad("lossy layers must go quiet: activeUntil in [1, 1e6]");
    }
  } else if (plan.loss.activeUntil != 0) {
    bad("loss activeUntil needs an iid or burst layer");
  }
  if (plan.loss.oneWayFrom != kNoProcess) {
    if (plan.loss.oneWayFrom >= n) {
      bad("one-way cut names a process outside the system");
    }
    if (plan.loss.oneWayWidth < 1) bad("one-way cut width must be >= 1");
    if (plan.loss.oneWayPeriod != 0 &&
        plan.loss.oneWayPeriod <= plan.loss.oneWayWidth) {
      bad("recurring one-way cut must heal: period > width");
    }
    if (plan.loss.oneWayStart > kMaxEventTime ||
        plan.loss.oneWayWidth > kMaxEventTime ||
        plan.loss.oneWayPeriod > kMaxEventTime) {
      bad("one-way cut times must be <= 1e6");
    }
  } else if (plan.loss.oneWayStart != 0 || plan.loss.oneWayWidth != 0 ||
             plan.loss.oneWayPeriod != 0) {
    bad("one-way cut window needs oneWayFrom");
  }

  if (plan.workload.interval < 1 || plan.workload.interval > 100'000) {
    bad("workload interval must be in [1, 1e5]");
  }
  if (plan.workload.start > kMaxEventTime) bad("workload start must be <= 1e6");
  if (plan.workload.perProcess > 10'000) {
    bad("workload perProcess must be <= 1e4");
  }
  if (plan.workload.writers > n) {
    bad("workload writers must be <= processCount (0 = all write)");
  }
  if (plan.stack != AlgoStack::kOmegaEc && plan.workload.perProcess < 1) {
    bad("broadcast stacks need at least one message per process");
  }
  if (plan.stack == AlgoStack::kOmegaEc) {
    if (plan.ecInstances < 1) bad("omega-ec needs ecInstances >= 1");
    if (plan.ecInstances > 10'000) bad("ecInstances must be <= 1e4");
  } else if (plan.ecInstances != 0) {
    bad("ecInstances is only meaningful for the omega-ec stack");
  }

  if (plan.maxTime > Time{1'000'000'000'000}) {
    bad("maxTime must be <= 1e12 (keeps the scaled event budget "
        "overflow-free)");
  }
  // Only evaluate the horizon once the bounds above hold — planHorizon's
  // arithmetic is overflow-free exactly under those bounds.
  if (out.empty() && plan.maxTime < planHorizon(plan)) {
    bad("maxTime below planHorizon: liveness clauses would be unfair");
  }
  return out;
}

Scenario planScenario(const FuzzPlan& plan) {
  Scenario s;
  s.name = std::string("fuzz-") + algoStackName(plan.stack);
  s.description = "sampled fuzz plan (see wfd_explore / docs/FUZZING.md)";

  s.config.processCount = plan.processCount;
  s.config.seed = plan.simSeed;
  s.config.maxTime = plan.maxTime;
  s.config.timeoutPeriod = plan.timeoutPeriod;
  s.config.minDelay = plan.minDelay;
  s.config.maxDelay = plan.maxDelay;
  // Scale the runaway-event guard with the plan: the per-tick event
  // volume is at most ~n^2 sends per lambda round, so this budget can
  // never truncate an admissible plan into a spurious liveness failure
  // (the default 4M would, for long hand-written horizons). Bounds in
  // planAdmissibilityViolations keep this product overflow-free.
  s.config.maxEvents = std::max<std::uint64_t>(
      4'000'000,
      8 * plan.processCount * plan.processCount *
          (plan.maxTime / plan.timeoutPeriod + 1));

  const std::vector<PlanCrash> crashes = plan.crashes;
  s.pattern = [crashes](std::size_t n) {
    FailurePattern fp(n);
    for (const PlanCrash& c : crashes) fp.setCrash(c.process, c.time);
    return fp;
  };
  const FuzzPlan planCopy = plan;
  s.network = [planCopy](const SimConfig&) -> std::shared_ptr<const NetworkModel> {
    return std::make_shared<RandomScheduleModel>(planCopy);
  };

  s.tauOmega = plan.tauOmega;
  s.omegaMode = plan.omegaMode;
  s.stack = plan.stack;

  s.workload.start = plan.workload.start;
  s.workload.interval = plan.workload.interval;
  s.workload.perProcess = plan.workload.perProcess;
  s.workload.causalChainPerOrigin = plan.workload.causalChain;
  s.workload.crossProcessDeps = plan.workload.crossDeps;
  s.workload.lwwPutBodies = plan.stack == AlgoStack::kGossipLww;
  s.workload.writers = plan.workload.writers;
  s.ecInstances = plan.ecInstances;

  // Spec oracle: exactly the clauses that are theorems for EVERY
  // admissible plan of this stack (progress clauses that need a specific
  // environment — commit indications, strong TOB — are not asserted; the
  // explorer's strict oracle adds strong TOB deliberately to harvest
  // separation witnesses).
  switch (plan.stack) {
    case AlgoStack::kEtob:
    case AlgoStack::kTobViaConsensus:
      s.checks.broadcast = true;
      s.checks.convergence = true;
      break;
    case AlgoStack::kCommitEtob:
      s.checks.broadcast = true;
      s.checks.convergence = true;
      // Commit safety is deliberately NOT asserted here: §7's no-
      // revocation guarantee is conditional on its proviso (a stable
      // majority acknowledging one leader), which sampled plans violate
      // freely — conflicting pre-stabilization commits then resolve by
      // the strength join (commit_etob.h), revoking one side. The
      // catalog's proviso scenarios keep checking it.
      break;
    case AlgoStack::kGossipLww:
      s.checks.gossipConvergence = true;
      break;
    case AlgoStack::kOmegaEc:
      s.checks.ec = true;
      break;
  }
  return s;
}

std::uint64_t planFingerprint(const FuzzPlan& plan) {
  return fnv1a64(encodeFuzzPlan(plan).dump());
}

}  // namespace wfd
