#include "sim/failure_pattern.h"

#include <algorithm>

#include "common/ensure.h"

namespace wfd {

FailurePattern::FailurePattern(std::size_t n) : crashTimes_(n, kNever) {
  WFD_ENSURE_MSG(n >= 2, "the paper's model requires n >= 2");
}

FailurePattern FailurePattern::noFailures(std::size_t n) { return FailurePattern(n); }

FailurePattern FailurePattern::crashesAt(
    std::size_t n, std::vector<std::pair<ProcessId, Time>> crashes) {
  FailurePattern fp(n);
  for (const auto& [p, t] : crashes) fp.setCrash(p, t);
  return fp;
}

void FailurePattern::setCrash(ProcessId p, Time t) {
  WFD_ENSURE(p < crashTimes_.size());
  crashTimes_[p] = t;
}

bool FailurePattern::crashed(ProcessId p, Time t) const {
  WFD_ENSURE(p < crashTimes_.size());
  return crashTimes_[p] <= t && crashTimes_[p] != kNever;
}

bool FailurePattern::faulty(ProcessId p) const {
  WFD_ENSURE(p < crashTimes_.size());
  return crashTimes_[p] != kNever;
}

Time FailurePattern::crashTime(ProcessId p) const {
  WFD_ENSURE(p < crashTimes_.size());
  return crashTimes_[p];
}

std::vector<ProcessId> FailurePattern::correctSet() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < crashTimes_.size(); ++p) {
    if (correct(p)) out.push_back(p);
  }
  return out;
}

std::vector<ProcessId> FailurePattern::faultySet() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < crashTimes_.size(); ++p) {
    if (faulty(p)) out.push_back(p);
  }
  return out;
}

std::vector<ProcessId> FailurePattern::aliveAt(Time t) const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < crashTimes_.size(); ++p) {
    if (!crashed(p, t)) out.push_back(p);
  }
  return out;
}

ProcessId FailurePattern::lowestCorrect() const {
  for (ProcessId p = 0; p < crashTimes_.size(); ++p) {
    if (correct(p)) return p;
  }
  return kNoProcess;
}

bool FailurePattern::hasCorrectMajority() const {
  return correctSet().size() * 2 > crashTimes_.size();
}

Time FailurePattern::lastCrashTime() const {
  Time last = 0;
  for (Time t : crashTimes_) {
    if (t != kNever) last = std::max(last, t);
  }
  return last;
}

FailurePattern Environments::allCorrect(std::size_t n) {
  return FailurePattern::noFailures(n);
}

FailurePattern Environments::minorityCrash(std::size_t n, Time when) {
  return staggeredCrashes(n, (n - 1) / 2, when, 0);
}

FailurePattern Environments::majorityCrash(std::size_t n, Time when) {
  // Crash ceil(n/2) processes so the correct set is a strict minority
  // whenever n >= 2 (for odd n this leaves floor(n/2) correct).
  return staggeredCrashes(n, (n + 1) / 2, when, 0);
}

FailurePattern Environments::staggeredCrashes(std::size_t n, std::size_t count,
                                              Time firstAt, Time spacing) {
  WFD_ENSURE(count < n);
  FailurePattern fp(n);
  for (std::size_t i = 0; i < count; ++i) {
    // Crash highest ids first so the lowest-id process stays correct and
    // can serve as the eventual Omega leader in default configurations.
    fp.setCrash(n - 1 - i, firstAt + spacing * i);
  }
  return fp;
}

}  // namespace wfd
