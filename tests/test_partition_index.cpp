// Mutation tests for the indexed partition path (PartitionSpec::componentOf).
//
// The flat component index replaced a std::function predicate on the
// deferral hot path; an index bug that silently cut nothing (or cut
// everything symmetric when the scenario meant one-way) would still
// produce *a* valid-looking run. So beyond the unit checks, every
// structural mutation here — dropping an overlapping spec, flipping a
// cut's direction, moving a heal boundary by one tick — must flip the
// run digest (or a checker) relative to the baseline. A mutation that
// does NOT flip anything means the feature under test is unobservable,
// which is the failure mode these tests exist to catch.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "checkers/workload.h"
#include "common/ensure.h"
#include "etob/etob_automaton.h"
#include "fd/detectors.h"
#include "scenario/trace_digest.h"
#include "sim/network_model.h"
#include "sim/simulator.h"

namespace wfd {
namespace {

constexpr std::size_t kN = 5;
constexpr std::size_t kHalf = 2;  // boundary: {0,1} vs {2,3,4}

/// One eTOB run over the given partition specs; returns (digest,
/// converged). Everything except the specs is fixed, so any digest
/// difference between two calls is attributable to the specs alone.
std::pair<std::uint64_t, bool> runWithSpecs(std::vector<PartitionSpec> specs) {
  SimConfig cfg;
  cfg.processCount = kN;
  cfg.seed = 21;
  cfg.maxTime = 9000;
  cfg.timeoutPeriod = 10;
  cfg.minDelay = 20;
  cfg.maxDelay = 40;
  auto fp = FailurePattern::noFailures(kN);
  auto omega =
      std::make_shared<OmegaFd>(fp, 800, OmegaPreStabilization::kSplitBrain);
  auto base = std::make_shared<UniformDelayModel>(20, 40, false);
  auto model = std::make_shared<PartitionModel>(base, std::move(specs));
  Simulator sim(cfg, fp, omega, model);
  for (ProcessId p = 0; p < kN; ++p) {
    sim.addProcess(p, std::make_unique<EtobAutomaton>());
  }
  BroadcastWorkload w;
  w.start = 100;
  w.interval = 50;
  w.perProcess = 4;
  const BroadcastLog log = scheduleBroadcastWorkload(sim, w);
  sim.run();
  return {traceDigest(sim.trace()), broadcastConverged(sim, log)};
}

PartitionSpec indexedHalves(Time start, Time width, Time period) {
  PartitionSpec s;
  s.start = start;
  s.width = width;
  s.period = period;
  s.componentOf = PartitionSpec::splitAt(kN, kHalf);
  return s;
}

// --- cuts() unit semantics --------------------------------------------------

TEST(PartitionSpecCutsTest, ComponentIndexCutsExactlyCrossComponentLinks) {
  PartitionSpec s;
  s.componentOf = PartitionSpec::splitAt(6, 3);
  for (ProcessId a = 0; a < 6; ++a) {
    for (ProcessId b = 0; b < 6; ++b) {
      EXPECT_EQ(s.cuts(a, b), (a < 3) != (b < 3)) << a << "->" << b;
      EXPECT_EQ(s.cuts(a, b), s.cuts(b, a)) << "index cuts are symmetric";
    }
  }
}

TEST(PartitionSpecCutsTest, ComponentIndexTakesPrecedenceOverPredicate) {
  PartitionSpec s;
  s.affects = [](ProcessId, ProcessId) { return true; };
  s.componentOf.assign(4, 0);  // one component: cuts nothing
  EXPECT_FALSE(s.cuts(0, 3));
  s.componentOf.clear();  // back to the predicate
  EXPECT_TRUE(s.cuts(0, 3));
}

TEST(PartitionSpecCutsTest, EmptyIndexNullPredicateAffectsAllLinks) {
  PartitionSpec s;
  EXPECT_TRUE(s.cuts(0, 1));
  EXPECT_TRUE(s.cuts(1, 0));
}

TEST(PartitionSpecCutsTest, OutOfRangeProcessIdIsAnInvariantError) {
  PartitionSpec s;
  s.componentOf = PartitionSpec::splitAt(4, 2);
  EXPECT_THROW(s.cuts(4, 0), InvariantError);
  EXPECT_THROW(s.cuts(0, 4), InvariantError);
}

TEST(PartitionSpecCutsTest, SplitAtDegenerateBoundariesCutNothing) {
  // boundary 0 puts everyone at/above the boundary; boundary n puts
  // everyone below it — either way one component, no cut links.
  PartitionSpec lo;
  lo.componentOf = PartitionSpec::splitAt(3, 0);
  PartitionSpec hi;
  hi.componentOf = PartitionSpec::splitAt(3, 3);
  for (ProcessId a = 0; a < 3; ++a) {
    for (ProcessId b = 0; b < 3; ++b) {
      EXPECT_FALSE(lo.cuts(a, b));
      EXPECT_FALSE(hi.cuts(a, b));
    }
  }
}

TEST(PartitionDeferralTest, JointlyCoveringSpecsAreAnInvariantErrorNotAHang) {
  // Each spec individually leaves a gap (width < period), but together
  // they cover all time on the link — a dropped message in disguise.
  PartitionSpec a = indexedHalves(0, 500, 1000);
  PartitionSpec b = indexedHalves(500, 500, 1000);
  EXPECT_THROW(deferPastPartitions({a, b}, 0, 3, 100), InvariantError);
}

// --- Index == predicate: the rewrite is behavior-preserving -----------------

TEST(PartitionIndexEquivalenceTest, IndexAndPredicateFormsRunIdentically) {
  PartitionSpec indexed = indexedHalves(400, 300, 900);
  PartitionSpec scanned;
  scanned.start = 400;
  scanned.width = 300;
  scanned.period = 900;
  scanned.affects = [](ProcessId from, ProcessId to) {
    return (from < kHalf) != (to < kHalf);
  };
  const auto a = runWithSpecs({indexed});
  const auto b = runWithSpecs({scanned});
  EXPECT_EQ(a.first, b.first) << "componentOf must cut the same links as "
                                 "the predicate it replaced";
  EXPECT_TRUE(a.second) << "baseline partition run must still converge";
  EXPECT_TRUE(b.second);
}

// --- Mutations: each feature must be observable -----------------------------

TEST(PartitionMutationTest, PartitionItselfFlipsTheDigest) {
  // Sanity anchor for every EXPECT_NE below: the baseline spec set is
  // observable against no partition at all.
  const auto cut = runWithSpecs({indexedHalves(400, 300, 900)});
  const auto open = runWithSpecs({});
  EXPECT_NE(cut.first, open.first);
  EXPECT_TRUE(cut.second);
  EXPECT_TRUE(open.second);
}

TEST(PartitionMutationTest, OneWayCutDiffersFromSymmetricAndFromItsReverse) {
  // The index form is symmetric by construction; one-way cuts go through
  // the predicate. If direction were ignored anywhere on the deferral
  // path, the three runs below could not all be distinct.
  PartitionSpec forward;
  forward.start = 400;
  forward.width = 300;
  forward.period = 900;
  forward.affects = [](ProcessId from, ProcessId to) {
    return from < kHalf && to >= kHalf;
  };
  PartitionSpec reverse = forward;
  reverse.affects = [](ProcessId from, ProcessId to) {
    return from >= kHalf && to < kHalf;
  };
  const auto sym = runWithSpecs({indexedHalves(400, 300, 900)});
  const auto fwd = runWithSpecs({forward});
  const auto rev = runWithSpecs({reverse});
  EXPECT_NE(fwd.first, sym.first);
  EXPECT_NE(rev.first, sym.first);
  EXPECT_NE(fwd.first, rev.first);
  EXPECT_TRUE(fwd.second);
  EXPECT_TRUE(rev.second);
}

TEST(PartitionMutationTest, DroppingOneOverlappingSpecFlipsTheDigest) {
  // Two recurring windows with co-prime-ish periods overlap and chain
  // (the catalog's large-cluster-partitions-64 shape at small n). If the
  // fixed-point deferral ever stopped consulting the second spec, this
  // digest comparison is the tripwire.
  PartitionSpec halves = indexedHalves(400, 300, 900);
  PartitionSpec segment;
  segment.start = 700;
  segment.width = 200;
  segment.period = 1100;
  segment.componentOf = PartitionSpec::splitAt(kN, 4);  // isolate p4
  const auto both = runWithSpecs({halves, segment});
  const auto justHalves = runWithSpecs({halves});
  const auto justSegment = runWithSpecs({segment});
  EXPECT_NE(both.first, justHalves.first);
  EXPECT_NE(both.first, justSegment.first);
  EXPECT_TRUE(both.second);
}

TEST(PartitionMutationTest, MovingTheHealBoundaryFlipsTheDigest) {
  // One-shot window spanning the workload: messages in flight at the
  // heal are released exactly at start + width, so the heal time is
  // part of the schedule. Two granularity facts are pinned here:
  // automaton-visible behavior is quantized to the lambda-step grid
  // (timeoutPeriod = 10), so a sub-lambda heal shift is absorbed, while
  // a one-lambda-period shift must flip the digest — if it does not,
  // deferrals are not actually landing on the window edge.
  const auto heal = runWithSpecs({indexedHalves(150, 400, 0)});
  const auto healTick = runWithSpecs({indexedHalves(150, 401, 0)});
  const auto healStep = runWithSpecs({indexedHalves(150, 410, 0)});
  const auto open = runWithSpecs({});
  EXPECT_NE(heal.first, open.first) << "one-shot window must be observable";
  EXPECT_EQ(heal.first, healTick.first)
      << "sub-lambda heal shifts quantize away";
  EXPECT_NE(heal.first, healStep.first);
  EXPECT_TRUE(heal.second);
  EXPECT_TRUE(healStep.second);
}

}  // namespace
}  // namespace wfd
