#include "fd/detectors.h"

#include <algorithm>

#include "common/ensure.h"
#include "common/hash.h"

namespace wfd {
namespace {

/// Stateless pseudo-random hash used where an oracle needs deterministic
/// "noise" as a pure function of (seed, p, t).
constexpr auto mix = splitmix64;

/// Epoch constant for "the value is pinned forever from here on".
constexpr std::uint64_t kSettledEpoch = 1ULL << 62;

/// Sorted crash times (resp. crash + lag) of the faulty processes.
std::vector<Time> sortedCrashTimes(const FailurePattern& pattern, Time lag) {
  std::vector<Time> out;
  for (ProcessId q = 0; q < pattern.size(); ++q) {
    const Time ct = pattern.crashTime(q);
    if (ct != FailurePattern::kNever) out.push_back(ct + lag);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// How many entries of the sorted vector are <= t. Because crash sets
/// only grow, this count uniquely identifies the crashed/detected SET at
/// t, which is what the epoch contract needs.
std::uint64_t countLeq(const std::vector<Time>& sorted, Time t) {
  return static_cast<std::uint64_t>(
      std::upper_bound(sorted.begin(), sorted.end(), t) - sorted.begin());
}

}  // namespace

OmegaFd::OmegaFd(FailurePattern pattern, Time stabilizeAt,
                 OmegaPreStabilization mode, Time rotationPeriod, ProcessId leader)
    : pattern_(std::move(pattern)),
      stabilizeAt_(stabilizeAt),
      mode_(mode),
      rotationPeriod_(rotationPeriod),
      leader_(leader == kNoProcess ? pattern_.lowestCorrect() : leader) {
  WFD_ENSURE(rotationPeriod_ >= 1);
  WFD_ENSURE_MSG(leader_ != kNoProcess, "Omega needs at least one correct process");
  WFD_ENSURE_MSG(pattern_.correct(leader_),
                 "the eventual Omega leader must be a correct process");
}

FdValue OmegaFd::valueAt(ProcessId p, Time t) const {
  WFD_ENSURE(p < pattern_.size());
  FdValue v;
  if (t >= stabilizeAt_) {
    v.leader = leader_;
    return v;
  }
  switch (mode_) {
    case OmegaPreStabilization::kStable:
      v.leader = leader_;
      break;
    case OmegaPreStabilization::kRotating:
      v.leader = static_cast<ProcessId>((t / rotationPeriod_) % pattern_.size());
      break;
    case OmegaPreStabilization::kSplitBrain:
      // Each process trusts a leader derived from its own id, shifting
      // slowly with time — distinct processes disagree almost always.
      v.leader = static_cast<ProcessId>((p + t / rotationPeriod_) % pattern_.size());
      break;
  }
  return v;
}

std::uint64_t OmegaFd::epochAt(ProcessId, Time t) const {
  // Post-stabilization (and kStable throughout) the leader is pinned.
  // Rotating/split-brain leaders are constant within one rotation block;
  // pre-tau blocks stay below kSettledEpoch because t < stabilizeAt_.
  if (t >= stabilizeAt_ || mode_ == OmegaPreStabilization::kStable) {
    return kSettledEpoch;
  }
  return static_cast<std::uint64_t>(t / rotationPeriod_);
}

std::string OmegaFd::name() const {
  return "Omega(tau=" + std::to_string(stabilizeAt_) + ")";
}

SigmaFd::SigmaFd(FailurePattern pattern, Time stabilizeAt)
    : pattern_(std::move(pattern)), stabilizeAt_(stabilizeAt) {
  for (ProcessId p = 0; p < pattern_.size(); ++p) everyone_.push_back(p);
  correct_ = pattern_.correctSet();
  WFD_ENSURE_MSG(!correct_.empty(), "Sigma needs at least one correct process");
}

FdValue SigmaFd::valueAt(ProcessId p, Time t) const {
  WFD_ENSURE(p < pattern_.size());
  FdValue v;
  v.quorum = t >= stabilizeAt_ ? correct_ : everyone_;
  return v;
}

std::uint64_t SigmaFd::epochAt(ProcessId, Time t) const {
  return t >= stabilizeAt_ ? 1 : 0;
}

std::string SigmaFd::name() const {
  return "Sigma(tau=" + std::to_string(stabilizeAt_) + ")";
}

PerfectFd::PerfectFd(FailurePattern pattern, Time detectionLag)
    : pattern_(std::move(pattern)),
      lag_(detectionLag),
      detectAt_(sortedCrashTimes(pattern_, lag_)) {}

FdValue PerfectFd::valueAt(ProcessId p, Time t) const {
  WFD_ENSURE(p < pattern_.size());
  FdValue v;
  for (ProcessId q = 0; q < pattern_.size(); ++q) {
    const Time ct = pattern_.crashTime(q);
    if (ct != FailurePattern::kNever && ct + lag_ <= t) v.suspects.push_back(q);
  }
  return v;
}

std::uint64_t PerfectFd::epochAt(ProcessId, Time t) const {
  return countLeq(detectAt_, t);
}

std::string PerfectFd::name() const { return "P(lag=" + std::to_string(lag_) + ")"; }

EventuallyPerfectFd::EventuallyPerfectFd(FailurePattern pattern, Time stabilizeAt,
                                         std::uint64_t seed)
    : pattern_(std::move(pattern)),
      stabilizeAt_(stabilizeAt),
      seed_(seed),
      crashTimes_(sortedCrashTimes(pattern_, 0)) {}

FdValue EventuallyPerfectFd::valueAt(ProcessId p, Time t) const {
  WFD_ENSURE(p < pattern_.size());
  FdValue v;
  for (ProcessId q = 0; q < pattern_.size(); ++q) {
    if (pattern_.crashed(q, t)) {
      v.suspects.push_back(q);
      continue;
    }
    if (t < stabilizeAt_ && q != p) {
      // Pre-stabilization false suspicion, stable over short windows so
      // protocols can observe (and act on) the mistakes.
      const std::uint64_t window = t / 64;
      if (mix(seed_ ^ (p * 0x10001ULL) ^ (q * 0x101ULL) ^ window) % 4 == 0) {
        v.suspects.push_back(q);
      }
    }
  }
  return v;
}

std::uint64_t EventuallyPerfectFd::epochAt(ProcessId, Time t) const {
  const std::uint64_t crashed = countLeq(crashTimes_, t);
  if (t >= stabilizeAt_) return kSettledEpoch + crashed;
  // Pre-tau the value is a function of (p, t / 64, crashed set); fold
  // the window and the crash count injectively (crashed <= n).
  return (t / 64) * (pattern_.size() + 1) + crashed;
}

std::string EventuallyPerfectFd::name() const {
  return "<>P(tau=" + std::to_string(stabilizeAt_) + ")";
}

OmegaSigmaFd::OmegaSigmaFd(std::shared_ptr<const OmegaFd> omega,
                           std::shared_ptr<const SigmaFd> sigma)
    : omega_(std::move(omega)), sigma_(std::move(sigma)) {
  WFD_ENSURE(omega_ != nullptr && sigma_ != nullptr);
}

FdValue OmegaSigmaFd::valueAt(ProcessId p, Time t) const {
  FdValue v = omega_->valueAt(p, t);
  v.quorum = sigma_->valueAt(p, t).quorum;
  return v;
}

std::uint64_t OmegaSigmaFd::epochAt(ProcessId p, Time t) const {
  // Sigma's epoch is 0/1, so this fold is injective in the pair.
  return omega_->epochAt(p, t) * 2 + sigma_->epochAt(p, t);
}

std::string OmegaSigmaFd::name() const {
  return omega_->name() + "+" + sigma_->name();
}

ScriptedFd::ScriptedFd(Script script, std::string name)
    : script_(std::move(script)), name_(std::move(name)) {
  WFD_ENSURE(static_cast<bool>(script_));
}

FdValue ScriptedFd::valueAt(ProcessId p, Time t) const { return script_(p, t); }

std::string ScriptedFd::name() const { return name_; }

OmegaFromEventuallyPerfect::OmegaFromEventuallyPerfect(
    std::shared_ptr<const FailureDetector> inner, std::size_t processCount)
    : inner_(std::move(inner)), processCount_(processCount) {
  WFD_ENSURE(inner_ != nullptr);
}

FdValue OmegaFromEventuallyPerfect::valueAt(ProcessId p, Time t) const {
  const FdValue inner = inner_->valueAt(p, t);
  FdValue v;
  v.leader = p;  // fallback: trust self if everyone else is suspected
  for (ProcessId q = 0; q < processCount_; ++q) {
    if (!std::binary_search(inner.suspects.begin(), inner.suspects.end(), q)) {
      v.leader = q;
      break;
    }
  }
  return v;
}

std::uint64_t OmegaFromEventuallyPerfect::epochAt(ProcessId p, Time t) const {
  // A pure function of the inner sample, so the inner epoch carries over.
  return inner_->epochAt(p, t);
}

std::string OmegaFromEventuallyPerfect::name() const {
  return "Omega<-" + inner_->name();
}

}  // namespace wfd
