// Seeded pseudo-random number generation for deterministic simulations.
//
// Every source of nondeterminism in a run (scheduling choices, message
// delays, pre-stabilization failure-detector output) draws from one Rng so
// a (seed, config) pair fully determines the run.
#pragma once

#include <cstdint>
#include <random>

#include "common/ensure.h"

namespace wfd {

/// Deterministic random source. Thin wrapper over std::mt19937_64 with the
/// few draw shapes the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound) {
    WFD_ENSURE(bound > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    WFD_ENSURE(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw: true with probability num/den.
  bool chance(std::uint32_t num, std::uint32_t den) {
    WFD_ENSURE(den > 0 && num <= den);
    return below(den) < num;
  }

  /// Derives an independent child generator (for per-component streams).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace wfd
