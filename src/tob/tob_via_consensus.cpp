#include "tob/tob_via_consensus.h"

#include <unordered_set>

namespace wfd {

TobViaConsensusAutomaton::TobViaConsensusAutomaton(ProcessId self,
                                                   std::size_t processCount)
    : engine_(self, processCount) {}

void TobViaConsensusAutomaton::onInput(const StepContext&, const Payload& input,
                                       Effects& fx) {
  const auto* bcast = input.as<BroadcastInput>();
  if (bcast == nullptr) return;
  fx.broadcast(Payload::of(TobSubmitMsg{bcast->msg}));
}

void TobViaConsensusAutomaton::onMessage(const StepContext&, ProcessId from,
                                         const Payload& msg, Effects& fx) {
  if (const auto* submit = msg.as<TobSubmitMsg>()) {
    pending_.emplace(submit->msg.id, submit->msg);
    return;
  }
  MultiPaxosEngine::Outbox out;
  if (engine_.onMessage(from, msg, out)) flushOutbox(out, fx);
}

void TobViaConsensusAutomaton::onTimeout(const StepContext& ctx, Effects& fx) {
  MultiPaxosEngine::Outbox out;
  engine_.tick(ctx.fd.leader == ctx.self, out);
  if (engine_.canPropose()) {
    // Propose the lowest undecided instance. Only one in flight at a
    // time: simple, and latency-equivalent to pipelining for the
    // experiments (batches absorb throughput).
    const Instance next = engine_.contiguousDecided() + 1;
    if (!engine_.proposalInFlight(next) && !engine_.decided(next)) {
      // Causal gating: a message joins the batch only once every declared
      // dependency is already delivered or precedes it in this batch, so
      // the consensus order never inverts C(m). The fixpoint loop batches
      // whole chains submitted together in dependency order; a message
      // whose dependency's submission has not reached this leader yet is
      // held back (submissions are broadcast over reliable links, so it
      // is only deferred, never dropped).
      std::unordered_set<MsgId> satisfied(d_.begin(), d_.end());
      std::vector<AppMsg> batch;
      bool progress = true;
      while (progress) {
        progress = false;
        for (const auto& [id, m] : pending_) {
          if (satisfied.contains(id)) continue;
          bool ready = true;
          for (MsgId dep : m.causalDeps) {
            if (!satisfied.contains(dep)) {
              ready = false;
              break;
            }
          }
          if (ready) {
            batch.push_back(m);
            satisfied.insert(id);
            progress = true;
          }
        }
      }
      if (!batch.empty()) {
        engine_.propose(next, encodeAppMsgSeq(batch), out);
      }
    }
  }
  flushOutbox(out, fx);
}

void TobViaConsensusAutomaton::flushOutbox(MultiPaxosEngine::Outbox& out,
                                           Effects& fx) {
  for (auto& [to, payload] : out.sends) {
    if (to == kBroadcast) {
      fx.broadcast(std::move(payload));
    } else {
      fx.send(to, std::move(payload));
    }
  }
  bool newDecision = false;
  for (auto& [instance, value] : out.decisions) {
    batches_[instance] = decodeAppMsgSeq(value);
    newDecision = true;
  }
  if (newDecision) rebuildDelivered(fx);
}

void TobViaConsensusAutomaton::rebuildDelivered(Effects& fx) {
  std::vector<MsgId> seq;
  std::unordered_set<MsgId> seen;
  for (Instance l = 1; batches_.contains(l); ++l) {
    for (const AppMsg& m : batches_.at(l)) {
      // A message may be re-proposed by a new leader that had not learned
      // an earlier decided batch; deliver first occurrence only.
      if (seen.insert(m.id).second) {
        seq.push_back(m.id);
        pending_.emplace(m.id, m);  // ensure content is known for lookup
      }
    }
  }
  if (seq != d_) {
    d_ = std::move(seq);
    fx.deliverSequence(d_);
  }
}

const AppMsg* TobViaConsensusAutomaton::findMessage(MsgId id) const {
  auto it = pending_.find(id);
  return it == pending_.end() ? nullptr : &it->second;
}

}  // namespace wfd
