// Shared test harness utilities.
#pragma once

#include <memory>

#include "fd/detectors.h"
#include "sim/failure_pattern.h"
#include "sim/simulator.h"

namespace wfd::test {

/// Simulator with an Omega detector over the given pattern.
inline Simulator makeOmegaSim(SimConfig cfg, FailurePattern pattern,
                              Time stabilizeAt,
                              OmegaPreStabilization mode =
                                  OmegaPreStabilization::kSplitBrain) {
  auto omega = std::make_shared<OmegaFd>(pattern, stabilizeAt, mode);
  return Simulator(cfg, std::move(pattern), std::move(omega));
}

}  // namespace wfd::test
